// Command vitis-trace generates and inspects the workloads behind the
// experiments — synthetic subscription patterns, Twitter-like follower
// graphs, Skype-like churn traces — and reconstructs propagation trees from
// span files recorded by vitis-node -trace.
//
//	vitis-trace subs -pattern high -nodes 512
//	vitis-trace twitter -users 4096 -sample 512
//	vitis-trace churn -nodes 256 -duration 600
//	vitis-trace spans -in pub.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"vitis/internal/core"
	"vitis/internal/experiments"
	"vitis/internal/idspace"
	"vitis/internal/overlay"
	"vitis/internal/simnet"
	"vitis/internal/stats"
	"vitis/internal/telemetry"
	"vitis/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "subs":
		subsCmd(os.Args[2:])
	case "twitter":
		twitterCmd(os.Args[2:])
	case "churn":
		churnCmd(os.Args[2:])
	case "overlay":
		overlayCmd(os.Args[2:])
	case "spans":
		spansCmd(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "vitis-trace: unknown subcommand %q\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vitis-trace {subs|twitter|churn|overlay|spans} [flags]")
	os.Exit(2)
}

// spansCmd reconstructs per-event propagation trees and relay-path summaries
// from a hop-level JSONL span file (vitis-node -trace, or a tracer wired
// into a simulation).
func spansCmd(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	in := fs.String("in", "", "JSONL span file (default: stdin)")
	trees := fs.Int("trees", 0, "render at most this many propagation trees (0 = all)")
	parseFlags(fs, args)

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	if err := runSpans(r, os.Stdout, *trees); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runSpans is the testable core of the spans subcommand.
func runSpans(r io.Reader, w io.Writer, maxTrees int) error {
	spans, err := telemetry.ReadSpans(r)
	if err != nil {
		return err
	}
	trace := telemetry.Analyze(spans)

	// Aggregate delivery hops across all events, with the simulator's
	// convention (0-hop self-deliveries excluded).
	var hopSum, hopCount, deliveries int
	for _, s := range trace.Spans {
		if s.Kind == telemetry.KindDeliver {
			deliveries++
			if s.Hops > 0 {
				hopSum += s.Hops
				hopCount++
			}
		}
	}
	avg := 0.0
	if hopCount > 0 {
		avg = float64(hopSum) / float64(hopCount)
	}
	fmt.Fprintf(w, "spans      %d\n", len(trace.Spans))
	fmt.Fprintf(w, "events     %d\n", len(trace.Events))
	fmt.Fprintf(w, "deliveries %d (avg %.2f hops)\n", deliveries, avg)
	fmt.Fprintf(w, "relays     %d\n", len(trace.Relays))

	// Publish→deliver latency, reconstructed offline from span timestamps
	// and quantized to the same buckets as the live
	// vitis_core_delivery_latency_seconds histogram, so the two percentile
	// views are directly comparable (0-hop self-deliveries excluded from
	// both). Requires traces stamped with a shared clock across nodes
	// (vitis-node uses unix milliseconds).
	if lats := spanLatencies(trace.Spans); len(lats) > 0 {
		h := telemetry.NewHistogram(telemetry.DeliveryLatencyBounds...)
		for _, v := range lats {
			h.Observe(v)
		}
		fmt.Fprintf(w, "latency    p50=%.3fs p90=%.3fs p99=%.3fs over %d remote deliveries\n",
			h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), len(lats))
	}

	for i, et := range trace.Events {
		if maxTrees > 0 && i == maxTrees {
			fmt.Fprintf(w, "... %d more events\n", len(trace.Events)-i)
			break
		}
		fmt.Fprintln(w)
		et.Render(w)
	}
	if len(trace.Relays) > 0 {
		fmt.Fprintln(w)
		for _, rp := range trace.Relays {
			status := fmt.Sprintf("rendezvous=%016x", rp.Rendezvous)
			if rp.Refused {
				status = "refused (TTL exhausted)"
			}
			fmt.Fprintf(w, "relay topic=%016x origin=%016x hops=%d %s\n",
				rp.Topic, rp.Origin, rp.Hops, status)
		}
	}
	return nil
}

// spanLatencies extracts one publish→deliver latency (in seconds) per
// remote delivery: deliver-span timestamp minus the event's publish-span
// timestamp. Deliveries with hops == 0 (the publisher delivering to itself)
// and events whose publish span is missing from the trace are skipped,
// mirroring what the live delivery-latency histogram observes. Negative
// differences (clock skew between nodes) clamp to zero, as on the live path.
func spanLatencies(spans []telemetry.SpanEvent) []float64 {
	pubTS := make(map[telemetry.EventKey]int64)
	for _, s := range spans {
		if s.Kind == telemetry.KindPublish {
			pubTS[telemetry.EventKey{Pub: s.Pub, Seq: s.Seq}] = s.TS
		}
	}
	var lats []float64
	for _, s := range spans {
		if s.Kind != telemetry.KindDeliver || s.Hops == 0 {
			continue
		}
		ts, ok := pubTS[telemetry.EventKey{Pub: s.Pub, Seq: s.Seq}]
		if !ok {
			continue
		}
		d := float64(s.TS-ts) / 1000
		if d < 0 {
			d = 0
		}
		lats = append(lats, d)
	}
	return lats
}

// parseFlags parses a subcommand's flags and rejects leftover positional
// arguments, so a typo like "vitis-trace subs -nodes512" fails loudly
// instead of running with defaults.
func parseFlags(fs *flag.FlagSet, args []string) {
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "vitis-trace %s: unexpected argument %q\n", fs.Name(), fs.Arg(0))
		fs.Usage()
		os.Exit(2)
	}
}

// overlayCmd converges a Vitis overlay and reports its cluster structure;
// with -dot it also writes a Graphviz rendering with one topic's clusters
// colored.
func overlayCmd(args []string) {
	fs := flag.NewFlagSet("overlay", flag.ExitOnError)
	nodes := fs.Int("nodes", 96, "number of nodes")
	topics := fs.Int("topics", 40, "number of topics")
	subs := fs.Int("subs", 10, "subscriptions per node")
	buckets := fs.Int("buckets", 8, "correlation buckets")
	pattern := fs.String("pattern", "high", "random, low or high")
	friends := fs.Int("friends", 12, "friend links out of a 15-entry table")
	dotPath := fs.String("dot", "", "write a Graphviz DOT file")
	seed := fs.Int64("seed", 1, "random seed")
	parseFlags(fs, args)

	pat, ok := map[string]workload.Pattern{
		"random": workload.Random, "low": workload.LowCorrelation, "high": workload.HighCorrelation,
	}[*pattern]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
	s, err := workload.Generate(workload.SyntheticConfig{
		Nodes: *nodes, Topics: *topics, SubsPerNode: *subs, Buckets: *buckets,
		Pattern: pat, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var snap *overlay.Snapshot
	_, err = experiments.Run(experiments.RunConfig{
		System: experiments.Vitis, Subs: s, Events: 1,
		RTSize: 15, SWLinks: 15 - 2 - *friends, Seed: *seed,
		InspectVitis: func(nodes []*core.Node) { snap = overlay.Capture(nodes) },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var sampleTopics []core.TopicID
	var coloredTopic core.TopicID
	for ti, nodesOf := range s.SubscribersOf() {
		if len(nodesOf) > 0 {
			tid := idspace.HashString(fmt.Sprintf("topic-%d", ti))
			if coloredTopic == 0 {
				coloredTopic = tid
			}
			sampleTopics = append(sampleTopics, tid)
			if len(sampleTopics) == 64 {
				break
			}
		}
	}
	st := snap.Analyze(sampleTopics)
	deg := snap.DegreeSummary()
	fmt.Printf("nodes               %d\n", snap.Links.NumVertices())
	fmt.Printf("overlay edges       %d\n", snap.Links.NumEdges())
	fmt.Printf("degree              mean=%.1f max=%.0f\n", deg.Mean, deg.Max)
	fmt.Printf("topics analysed     %d\n", st.Topics)
	fmt.Printf("clusters per topic  mean=%.2f max=%d\n", st.MeanPerTopic, st.MaxPerTopic)
	fmt.Printf("cluster size        mean=%.1f (singletons: %d)\n", st.MeanClusterSize, st.Singletons)
	fmt.Printf("cluster diameter    mean=%.2f\n", st.MeanDiameter)
	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(snap.DOT(coloredTopic)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (clusters of one topic colored)\n", *dotPath)
	}
}

func subsCmd(args []string) {
	fs := flag.NewFlagSet("subs", flag.ExitOnError)
	pattern := fs.String("pattern", "high", "random, low or high")
	nodes := fs.Int("nodes", 512, "number of nodes")
	topics := fs.Int("topics", 1000, "number of topics")
	subs := fs.Int("subs", 50, "subscriptions per node")
	buckets := fs.Int("buckets", 20, "correlation buckets")
	seed := fs.Int64("seed", 1, "random seed")
	parseFlags(fs, args)

	pat, ok := map[string]workload.Pattern{
		"random": workload.Random, "low": workload.LowCorrelation, "high": workload.HighCorrelation,
	}[*pattern]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
	s, err := workload.Generate(workload.SyntheticConfig{
		Nodes: *nodes, Topics: *topics, SubsPerNode: *subs, Buckets: *buckets,
		Pattern: pat, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	var pops []float64
	for _, nodesOf := range s.SubscribersOf() {
		pops = append(pops, float64(len(nodesOf)))
	}
	popSum := stats.Summarize(pops)
	fmt.Printf("pattern            %s\n", pat)
	fmt.Printf("nodes              %d\n", s.Nodes)
	fmt.Printf("topics             %d\n", s.Topics)
	fmt.Printf("subs per node      %.1f\n", s.AvgSubsPerNode())
	fmt.Printf("topic popularity   mean=%.1f min=%.0f max=%.0f\n", popSum.Mean, popSum.Min, popSum.Max)
	fmt.Printf("pairwise overlap   %.4f (sampled)\n", s.MeanPairwiseOverlap(rng, 5000))
}

func twitterCmd(args []string) {
	fs := flag.NewFlagSet("twitter", flag.ExitOnError)
	users := fs.Int("users", 4096, "users in the generated follower graph")
	sample := fs.Int("sample", 512, "BFS sample size (0 = skip sampling)")
	seed := fs.Int64("seed", 1, "random seed")
	parseFlags(fs, args)

	g, err := workload.GenerateTwitter(workload.TwitterConfig{Users: *users, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := workload.Stats(g)
	fmt.Printf("users              %d\n", st.Users)
	fmt.Printf("follow relations   %d\n", st.Follows)
	fmt.Printf("avg out-degree     %.2f (max %d)\n", st.AvgOutDegree, st.MaxOutDegree)
	fmt.Printf("avg in-degree      %.2f (max %d)\n", st.AvgInDegree, st.MaxInDegree)
	fmt.Printf("fitted alpha       %.2f (paper: 1.65)\n", st.FittedAlpha)

	if *sample > 0 {
		rng := rand.New(rand.NewSource(*seed + 1))
		ids := workload.BFSSample(g, rng, *sample)
		subs := workload.SubgraphSubscriptions(g, ids)
		fmt.Printf("sampled nodes      %d\n", subs.Nodes)
		fmt.Printf("sample subs/node   %.1f\n", subs.AvgSubsPerNode())
	}
}

func churnCmd(args []string) {
	fs := flag.NewFlagSet("churn", flag.ExitOnError)
	nodes := fs.Int("nodes", 256, "node population")
	duration := fs.Int64("duration", 600, "trace duration in simulated seconds")
	flashAt := fs.Int64("flash", 400, "flash crowd instant in seconds (0 = none)")
	flashFrac := fs.Float64("flashfrac", 0.3, "fraction of nodes joining in the flash crowd")
	interval := fs.Int64("interval", 50, "size-series sampling interval in seconds")
	seed := fs.Int64("seed", 1, "random seed")
	parseFlags(fs, args)

	d := simnet.Time(*duration) * simnet.Second
	tr, err := workload.GenerateChurn(workload.ChurnConfig{
		Nodes:            *nodes,
		Duration:         d,
		MeanSession:      d / 4,
		MeanOffline:      d / 10,
		RampWindow:       d / 4,
		FlashCrowdAt:     simnet.Time(*flashAt) * simnet.Second,
		FlashCrowdFrac:   *flashFrac,
		FlashCrowdWindow: d / 60,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("sessions  %d\n", len(tr))
	fmt.Printf("duration  %ds\n", *duration)
	fmt.Println("time(s)  alive")
	step := simnet.Time(*interval) * simnet.Second
	for i, size := range tr.SizeSeries(step) {
		fmt.Printf("%7d  %d\n", int64(simnet.Time(i)*step/simnet.Second), size)
	}
}
