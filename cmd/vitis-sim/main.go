// Command vitis-sim runs a single publish/subscribe simulation and prints
// its metrics. It is the quickest way to poke at one configuration:
//
//	vitis-sim -system vitis -pattern high -nodes 512 -events 200
//	vitis-sim -system rvr -pattern random -rt 25
//	vitis-sim -system opt -pattern twitter -optdegree 15
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"vitis/internal/experiments"
	"vitis/internal/stats"
	"vitis/internal/workload"
)

func main() {
	var (
		system  = flag.String("system", "vitis", "system to run: vitis, rvr or opt")
		pattern = flag.String("pattern", "high", "subscription pattern: random, low, high or twitter")
		nodes   = flag.Int("nodes", 512, "number of nodes")
		topics  = flag.Int("topics", 1000, "number of topics (synthetic patterns)")
		subs    = flag.Int("subs", 50, "subscriptions per node (synthetic patterns)")
		buckets = flag.Int("buckets", 20, "correlation buckets (synthetic patterns)")
		events  = flag.Int("events", 120, "events to publish")
		warmup  = flag.Int("warmup", 40, "warmup gossip rounds before publishing")
		window  = flag.Int("window", 20, "publication window in rounds")
		rt      = flag.Int("rt", 15, "routing table size")
		sw      = flag.Int("sw", 1, "small-world links k (vitis)")
		d       = flag.Int("d", 5, "gateway hop threshold (vitis)")
		optDeg  = flag.Int("optdegree", 0, "OPT degree bound (0 = unbounded)")
		alpha   = flag.Float64("alpha", 0, "publication rate skew (0 = uniform)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var sys experiments.System
	switch *system {
	case "vitis":
		sys = experiments.Vitis
	case "rvr":
		sys = experiments.RVR
	case "opt":
		sys = experiments.OPT
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	var sub *workload.Subscriptions
	var err error
	switch *pattern {
	case "random", "low", "high":
		pat := map[string]workload.Pattern{
			"random": workload.Random, "low": workload.LowCorrelation, "high": workload.HighCorrelation,
		}[*pattern]
		sub, err = workload.Generate(workload.SyntheticConfig{
			Nodes: *nodes, Topics: *topics, SubsPerNode: *subs,
			Buckets: *buckets, Pattern: pat, Seed: *seed,
		})
	case "twitter":
		graph, gerr := workload.GenerateTwitter(workload.TwitterConfig{Users: *nodes * 8, Seed: *seed})
		if gerr != nil {
			err = gerr
			break
		}
		sample := workload.BFSSample(graph, rand.New(rand.NewSource(*seed+1)), *nodes)
		sub = workload.SubgraphSubscriptions(graph, sample)
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "workload:", err)
		os.Exit(1)
	}

	var rates []float64
	if *alpha > 0 {
		rates = workload.TopicRates(rand.New(rand.NewSource(*seed+2)), sub.Topics, *alpha)
	}

	res, err := experiments.Run(experiments.RunConfig{
		System:        sys,
		Subs:          sub,
		Rates:         rates,
		Events:        *events,
		WarmupRounds:  *warmup,
		MeasureRounds: *window,
		RTSize:        *rt,
		SWLinks:       *sw,
		GatewayHops:   *d,
		OPTMaxDegree:  *optDeg,
		Seed:          *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}

	fmt.Printf("system            %s\n", sys)
	fmt.Printf("pattern           %s\n", *pattern)
	fmt.Printf("nodes             %d\n", sub.Nodes)
	fmt.Printf("topics            %d\n", sub.Topics)
	fmt.Printf("avg subs/node     %.1f\n", sub.AvgSubsPerNode())
	fmt.Printf("events            %d\n", res.Collector.Events())
	fmt.Printf("hit ratio         %.2f%%\n", 100*res.HitRatio)
	fmt.Printf("traffic overhead  %.2f%%\n", 100*res.Overhead)
	fmt.Printf("avg delay         %.2f hops (max %d)\n", res.AvgDelay, res.Collector.MaxDelay())
	sum := stats.Summarize(res.PerNodeOverheadPct)
	fmt.Printf("per-node overhead p50=%.1f%% p90=%.1f%% max=%.1f%%\n",
		stats.Percentile(res.PerNodeOverheadPct, 50),
		stats.Percentile(res.PerNodeOverheadPct, 90), sum.Max)
	ds := stats.Summarize(intsToFloats(res.Degrees))
	fmt.Printf("node degree       mean=%.1f max=%.0f\n", ds.Mean, ds.Max)
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
