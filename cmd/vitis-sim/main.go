// Command vitis-sim runs a single publish/subscribe simulation and prints
// its metrics. It is the quickest way to poke at one configuration:
//
//	vitis-sim -system vitis -pattern high -nodes 512 -events 200
//	vitis-sim -system rvr -pattern random -rt 25
//	vitis-sim -system opt -pattern twitter -optdegree 15
//	vitis-sim -runs 8 -parallel 4   # 8 seed replicas, 4 at a time
//
// With -runs R the same configuration is replicated over R consecutive
// seeds (seed, seed+1, ...) and the replicas execute on up to -parallel
// worker goroutines (default: the CPU count). Every replica owns its own
// engine and RNG streams, so the per-seed results and their mean are
// independent of the worker count.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"vitis/internal/experiments"
	"vitis/internal/parallel"
	"vitis/internal/profiling"
	"vitis/internal/stats"
	"vitis/internal/workload"
)

func main() {
	var (
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	var (
		system   = flag.String("system", "vitis", "system to run: vitis, rvr or opt")
		pattern  = flag.String("pattern", "high", "subscription pattern: random, low, high or twitter")
		nodes    = flag.Int("nodes", 512, "number of nodes")
		topics   = flag.Int("topics", 1000, "number of topics (synthetic patterns)")
		subs     = flag.Int("subs", 50, "subscriptions per node (synthetic patterns)")
		buckets  = flag.Int("buckets", 20, "correlation buckets (synthetic patterns)")
		events   = flag.Int("events", 120, "events to publish")
		warmup   = flag.Int("warmup", 40, "warmup gossip rounds before publishing")
		window   = flag.Int("window", 20, "publication window in rounds")
		rt       = flag.Int("rt", 15, "routing table size")
		sw       = flag.Int("sw", 1, "small-world links k (vitis)")
		d        = flag.Int("d", 5, "gateway hop threshold (vitis)")
		optDeg   = flag.Int("optdegree", 0, "OPT degree bound (0 = unbounded)")
		alpha    = flag.Float64("alpha", 0, "publication rate skew (0 = uniform)")
		seed     = flag.Int64("seed", 1, "random seed")
		runs     = flag.Int("runs", 1, "seed replicas of the configuration (seed, seed+1, ...)")
		workers  = flag.Int("parallel", runtime.NumCPU(), "max concurrent replicas")
		progress = flag.Bool("progress", true, "print per-run timing to stderr")
	)
	flag.Parse()

	var sys experiments.System
	switch *system {
	case "vitis":
		sys = experiments.Vitis
	case "rvr":
		sys = experiments.RVR
	case "opt":
		sys = experiments.OPT
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}
	if *runs < 1 {
		*runs = 1
	}
	if *workers < 1 {
		*workers = 1
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	finishProfiles := func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	// Workload generation per replica seed (cheap next to the simulation;
	// kept inside the replica so every seed gets its own pattern draw).
	buildSubs := func(runSeed int64) (*workload.Subscriptions, error) {
		switch *pattern {
		case "random", "low", "high":
			pat := map[string]workload.Pattern{
				"random": workload.Random, "low": workload.LowCorrelation, "high": workload.HighCorrelation,
			}[*pattern]
			return workload.Generate(workload.SyntheticConfig{
				Nodes: *nodes, Topics: *topics, SubsPerNode: *subs,
				Buckets: *buckets, Pattern: pat, Seed: runSeed,
			})
		case "twitter":
			graph, err := workload.GenerateTwitter(workload.TwitterConfig{Users: *nodes * 8, Seed: runSeed})
			if err != nil {
				return nil, err
			}
			sample := workload.BFSSample(graph, rand.New(rand.NewSource(runSeed+1)), *nodes)
			return workload.SubgraphSubscriptions(graph, sample), nil
		default:
			return nil, fmt.Errorf("unknown pattern %q", *pattern)
		}
	}

	type runOut struct {
		sub *workload.Subscriptions
		res *experiments.RunResult
	}
	start := time.Now()
	outs, err := parallel.Map(*workers, *runs, func(i int) (runOut, error) {
		runSeed := *seed + int64(i)
		runStart := time.Now()
		sub, err := buildSubs(runSeed)
		if err != nil {
			return runOut{}, fmt.Errorf("workload: %w", err)
		}
		var rates []float64
		if *alpha > 0 {
			rates = workload.TopicRates(rand.New(rand.NewSource(runSeed+2)), sub.Topics, *alpha)
		}
		res, err := experiments.Run(experiments.RunConfig{
			System:        sys,
			Subs:          sub,
			Rates:         rates,
			Events:        *events,
			WarmupRounds:  *warmup,
			MeasureRounds: *window,
			RTSize:        *rt,
			SWLinks:       *sw,
			GatewayHops:   *d,
			OPTMaxDegree:  *optDeg,
			Seed:          runSeed,
		})
		if err != nil {
			return runOut{}, fmt.Errorf("run: %w", err)
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "  seed %d done in %v\n", runSeed, time.Since(runStart).Round(time.Millisecond))
		}
		return runOut{sub: sub, res: res}, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		finishProfiles()
		os.Exit(1)
	}

	report := func(sub *workload.Subscriptions, res *experiments.RunResult) {
		fmt.Printf("system            %s\n", sys)
		fmt.Printf("pattern           %s\n", *pattern)
		fmt.Printf("nodes             %d\n", sub.Nodes)
		fmt.Printf("topics            %d\n", sub.Topics)
		fmt.Printf("avg subs/node     %.1f\n", sub.AvgSubsPerNode())
		fmt.Printf("events            %d\n", res.Collector.Events())
		fmt.Printf("hit ratio         %.2f%%\n", 100*res.HitRatio)
		fmt.Printf("traffic overhead  %.2f%%\n", 100*res.Overhead)
		fmt.Printf("avg delay         %.2f hops (max %d)\n", res.AvgDelay, res.Collector.MaxDelay())
		sum := stats.Summarize(res.PerNodeOverheadPct)
		fmt.Printf("per-node overhead p50=%.1f%% p90=%.1f%% max=%.1f%%\n",
			stats.Percentile(res.PerNodeOverheadPct, 50),
			stats.Percentile(res.PerNodeOverheadPct, 90), sum.Max)
		ds := stats.Summarize(intsToFloats(res.Degrees))
		fmt.Printf("node degree       mean=%.1f max=%.0f\n", ds.Mean, ds.Max)
	}

	if *runs == 1 {
		report(outs[0].sub, outs[0].res)
		finishProfiles()
		return
	}

	var hits, ovhs, delays []float64
	for i, o := range outs {
		fmt.Printf("seed %-6d hit %.2f%%  overhead %.2f%%  delay %.2f hops\n",
			*seed+int64(i), 100*o.res.HitRatio, 100*o.res.Overhead, o.res.AvgDelay)
		hits = append(hits, o.res.HitRatio)
		ovhs = append(ovhs, o.res.Overhead)
		delays = append(delays, o.res.AvgDelay)
	}
	fmt.Printf("\nmean over %d seeds (parallel=%d, %v wall):\n",
		*runs, *workers, time.Since(start).Round(time.Millisecond))
	fmt.Printf("hit ratio         %.2f%%\n", 100*stats.Summarize(hits).Mean)
	fmt.Printf("traffic overhead  %.2f%%\n", 100*stats.Summarize(ovhs).Mean)
	fmt.Printf("avg delay         %.2f hops\n", stats.Summarize(delays).Mean)
	finishProfiles()
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
